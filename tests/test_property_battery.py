"""Randomized invariant battery over every generator and both strategies.

Each case builds a seeded random (or structured) graph from one of the
generators in :mod:`repro.graph.generators` and checks the library's core
contracts against each other:

* **MSRP == brute force** — the efficient pipeline (both landmark
  strategies) agrees entry-for-entry with the per-edge BFS oracle.
* **SSRP == MSRP restricted to one source** — running the multi-source
  pipeline and projecting onto one source gives the same values as the
  single-source entry point.
* **Metric sanity** — every replacement length is at least the original
  distance, and is infinite exactly when the failed edge is a bridge whose
  removal separates the pair.
* **CSR BFS == dict BFS** — the flat kernel and the reference
  implementation produce identical distances, parents and orders on the
  same battery, with and without forbidden edges.
* **Lazy tree == parent-walk reference** — the lazily materialised
  structural queries of :class:`ShortestPathTree` (``is_ancestor``,
  ``edge_child``, ``distance_avoiding``, ``subtree_size``) agree with
  naive parent-pointer walks, and trees produced by ``bfs_many`` build no
  structural cache until the first structural query.
* **Interned Dijkstra == reference Dijkstra** — the typed-array
  :class:`InternedAuxiliaryGraph` produces the same distances (and
  distance-consistent predecessors) as the dict-based reference on the
  same randomly weighted auxiliary graphs, and its compiled CSR really is
  the typed-array (``'i'``/``'i'``/``'d'``) form.
* **Id-path walk == tuple-node walk** — ``NearSmallTables.walk`` (flat
  integer predecessor climb, intern-table decode at reconstruction only)
  returns exactly what the historical tuple-node reconstruction
  (``walk_reference``) returns, including ``[]`` for unreachable pairs,
  and still raises without ``with_paths=True``.

The default battery is sized to stay fast; the ``slow`` marked variants
rerun the same invariants over many more seeds (deselect in CI with
``-m "not slow"``).
"""

from __future__ import annotations

import math
import random
from array import array

import pytest

from repro.core.msrp import multiple_source_replacement_paths
from repro.core.near_small import compute_near_small_tables, near_edges_from_target
from repro.core.params import AlgorithmParams, ProblemScale
from repro.core.ssrp import single_source_replacement_paths
from repro.exceptions import InvalidParameterError
from repro.graph import generators
from repro.graph.bfs import bfs_distances, bfs_tree
from repro.graph.csr import bfs_distances_csr, bfs_many, bfs_tree_csr
from repro.graph.graph import normalize_edge
from repro.rp.bruteforce import brute_force_multi_source, brute_force_single_source
from repro.rp.dijkstra import (
    AuxiliaryGraphBuilder,
    InternedAuxiliaryGraph,
    dijkstra,
    reconstruct_path,
)

#: name -> seeded factory covering every generator in the module.
GENERATORS = {
    "gnp": lambda seed: generators.gnp_random_graph(13, 0.3, seed=seed),
    "gnm": lambda seed: generators.gnm_random_graph(12, 18, seed=seed),
    "regular": lambda seed: generators.random_regular_graph(12, 3, seed=seed),
    "connected": lambda seed: generators.random_connected_graph(
        13, extra_edges=10, seed=seed
    ),
    "grid": lambda seed: generators.grid_graph(3, 4),
    "path": lambda seed: generators.path_graph(9),
    "cycle": lambda seed: generators.cycle_graph(8),
    "star": lambda seed: generators.star_graph(7),
    "complete": lambda seed: generators.complete_graph(6),
    "barbell": lambda seed: generators.barbell_graph(3, 3),
    "clusters": lambda seed: generators.path_with_clusters(7, 3, 2, seed=seed),
}

STRATEGIES = ("direct", "auxiliary")


def pick_sources(graph, seed, count=2):
    rng = random.Random(seed)
    count = min(count, max(1, graph.num_vertices))
    return sorted(rng.sample(range(graph.num_vertices), count))


def run_msrp(graph, sources, strategy, seed):
    params = AlgorithmParams(seed=seed)
    return multiple_source_replacement_paths(
        graph, sources, params=params, landmark_strategy=strategy
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_msrp_matches_bruteforce(name, strategy):
    for seed in (1, 2):
        graph = GENERATORS[name](seed)
        sources = pick_sources(graph, seed)
        result = run_msrp(graph, sources, strategy, seed)
        reference = brute_force_multi_source(graph, sources)
        mismatches = result.differences_from(reference)
        assert not mismatches, (
            f"{name}/{strategy}/seed={seed}: {len(mismatches)} mismatches, "
            f"first: {mismatches[:3]}"
        )


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_ssrp_equals_msrp_restricted_to_one_source(name):
    seed = 5
    graph = GENERATORS[name](seed)
    sources = pick_sources(graph, seed)
    msrp = run_msrp(graph, sources, "direct", seed)
    for s in sources:
        ssrp = single_source_replacement_paths(
            graph, s, params=AlgorithmParams(seed=seed)
        )
        # Same canonical trees (BFS is deterministic), so the per-source
        # tables must agree key-for-key and value-for-value.
        assert ssrp.table(s) == msrp.table(s)


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_metric_sanity(name):
    seed = 7
    graph = GENERATORS[name](seed)
    sources = pick_sources(graph, seed)
    result = run_msrp(graph, sources, "direct", seed)
    for s, t, edge, value in result.iter_entries():
        original = result.distance(s, t)
        assert value >= original, (
            f"{name}: replacement |{s}{t} <> {edge}| = {value} shorter than "
            f"the original distance {original}"
        )
        truth = bfs_distances_csr(graph, s, forbidden_edge=edge)[t]
        assert (value == math.inf) == (truth == math.inf)
        if value == math.inf:
            # Only a bridge whose removal separates the pair may be
            # irreplaceable: its endpoints must fall apart without it.
            u, v = edge
            assert bfs_distances_csr(graph, u, forbidden_edge=edge)[v] == math.inf


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_csr_bfs_equals_dict_bfs(name):
    for seed in (3, 4):
        graph = GENERATORS[name](seed)
        n = graph.num_vertices
        rng = random.Random(seed)
        roots = {0, n - 1, rng.randrange(n)}
        for root in roots:
            assert bfs_distances_csr(graph, root) == bfs_distances(graph, root)
            dict_tree = bfs_tree(graph, root)
            csr_tree = bfs_tree_csr(graph, root)
            assert csr_tree.parent == dict_tree.parent
            assert csr_tree.dist == dict_tree.dist
            assert csr_tree.order == dict_tree.order
        edges = graph.edges()
        for edge in rng.sample(edges, min(4, len(edges))):
            assert bfs_distances_csr(graph, 0, forbidden_edge=edge) == bfs_distances(
                graph, 0, forbidden_edge=edge
            )


# -- lazy tree structural queries vs parent-walk references -----------------


def ref_is_ancestor(tree, ancestor, descendant):
    """Walk parent pointers from ``descendant`` to the root."""
    if not tree.is_reachable(descendant) or not tree.is_reachable(ancestor):
        return False
    v = descendant
    while v is not None:
        if v == ancestor:
            return True
        v = tree.parent[v]
    return False


def ref_path_edge_set(tree, target):
    """Normalised edges of the canonical root-``target`` path."""
    edges = set()
    v = target
    while tree.parent[v] is not None:
        edges.add(normalize_edge(tree.parent[v], v))
        v = tree.parent[v]
    return edges


def ref_edge_child(tree, edge):
    u, v = edge
    if tree.parent[v] == u:
        return v
    if tree.parent[u] == v:
        return u
    return None


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_lazy_tree_queries_match_parent_walk_reference(name):
    for seed in (1, 2):
        graph = GENERATORS[name](seed)
        n = graph.num_vertices
        tree = bfs_tree_csr(graph, seed % n)
        for ancestor in range(n):
            for descendant in range(n):
                assert tree.is_ancestor(ancestor, descendant) == ref_is_ancestor(
                    tree, ancestor, descendant
                ), f"{name}: is_ancestor({ancestor}, {descendant})"
        for v in range(n):
            expected = sum(
                1 for x in range(n) if ref_is_ancestor(tree, v, x)
            )
            assert tree.subtree_size(v) == expected, f"{name}: subtree_size({v})"
        for edge in graph.edges():
            assert tree.edge_child(edge) == ref_edge_child(tree, edge), (
                f"{name}: edge_child({edge})"
            )
            for target in range(n):
                if tree.is_reachable(target):
                    uses = edge in ref_path_edge_set(tree, target)
                    expected = math.inf if uses else tree.dist[target]
                else:
                    expected = math.inf
                assert tree.distance_avoiding(edge, target) == expected, (
                    f"{name}: distance_avoiding({edge}, {target})"
                )


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_bfs_many_trees_build_no_structural_cache(name):
    """Trees that never issue structural queries must stay flat-array only."""
    graph = GENERATORS[name](9)
    n = graph.num_vertices
    trees = bfs_many(graph, [0, n - 1])
    for root, tree in trees.items():
        assert not tree.has_structural_cache
        # Distance-style queries (what oracle/center trees issue) stay lazy.
        deepest = tree.order[-1]
        path = tree.path_to(deepest)
        tree.deepest_path_ancestor_indices(path)
        assert tree.distance(deepest) == len(path) - 1
        assert not tree.has_structural_cache
        # The first structural query materialises the caches, once.
        assert tree.is_ancestor(root, deepest)
        assert tree.has_structural_cache
        # children() hands back the cached tuple, no per-call allocation.
        assert tree.children(root) is tree.children(root)


# -- interned Dijkstra vs the dict-based reference ---------------------------


def build_auxiliary_pair(graph, seed):
    """The same randomly weighted auxiliary graph on both substrates."""
    rng = random.Random(seed)
    reference = AuxiliaryGraphBuilder()
    interned = InternedAuxiliaryGraph()
    arcs = {}
    for u, v in graph.edges():
        for a, b in ((u, v), (v, u)):
            weight = float(rng.randrange(0, 5))
            reference.add_edge(("v", a), ("v", b), weight)
            interned.add_edge(("v", a), ("v", b), weight)
            arcs.setdefault((("v", a), ("v", b)), set()).add(weight)
    # Tuple-tagged auxiliary nodes hanging off random vertices, as the
    # Section 7/8 graphs create them.
    for i in range(6):
        t = rng.randrange(graph.num_vertices)
        weight = float(rng.randrange(1, 4))
        reference.add_edge(("v", t), ("ve", t, i), weight)
        interned.add_edge(("v", t), ("ve", t, i), weight)
        arcs.setdefault((("v", t), ("ve", t, i)), set()).add(weight)
    reference.add_node(("isolated",))
    interned.add_node(("isolated",))
    return reference, interned, arcs


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_interned_dijkstra_matches_reference(name):
    for seed in (1, 2):
        graph = GENERATORS[name](seed)
        reference, interned, arcs = build_auxiliary_pair(graph, seed)
        source = ("v", seed % graph.num_vertices)
        ref_dist, ref_pred = dijkstra(
            reference.adjacency(), source, with_predecessors=True
        )
        int_dist, int_pred = interned.dijkstra(source, with_predecessors=True)
        assert int_dist.to_dict() == ref_dist, f"{name}/seed={seed}"
        assert ("isolated",) not in int_dist
        assert int_dist.get(("never", "seen")) is math.inf
        # Predecessors may differ on ties, but every reconstructed path must
        # be realisable arc-by-arc and distance-consistent.
        for node, distance in ref_dist.items():
            path = reconstruct_path(int_pred, source, node)
            assert path, f"{name}: {node} reached but not reconstructible"
            assert path[0] == source and path[-1] == node
            for a, b in zip(path, path[1:]):
                step = ref_dist[b] - ref_dist[a]
                assert any(
                    abs(step - w) < 1e-9 for w in arcs[(a, b)]
                ), f"{name}: step {a}->{b} not realised by any arc weight"
            assert ref_dist[node] == distance


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_typed_array_csr_dijkstra_matches_reference(name):
    """The compiled CSR is genuinely flat typed buffers, with reference distances.

    ``compiled_csr()`` must hand back flat int offsets/targets and float
    weights — ``array('i')``/``array('d')`` on the reference tier,
    integer/float64 ndarrays on the numpy tier — whose row structure
    covers every arc, and the heap loop consuming them must agree with
    the dict-based reference.
    """
    from repro.npsupport import numpy_enabled

    for seed in (5, 6):
        graph = GENERATORS[name](seed)
        reference, interned, _arcs = build_auxiliary_pair(graph, seed)
        offsets, targets, weights = interned.compiled_csr()
        if numpy_enabled():
            np = pytest.importorskip("numpy")
            assert isinstance(offsets, np.ndarray) and offsets.dtype.kind == "i"
            assert isinstance(targets, np.ndarray) and targets.dtype.kind == "i"
            assert isinstance(weights, np.ndarray) and weights.dtype == np.float64
        else:
            assert isinstance(offsets, array) and offsets.typecode == "i"
            assert isinstance(targets, array) and targets.typecode == "i"
            assert isinstance(weights, array) and weights.typecode == "d"
        assert len(offsets) == interned.num_nodes + 1
        assert len(targets) == len(weights) == offsets[-1] == interned.num_edges
        assert list(offsets) == sorted(offsets), "offsets must be monotone"
        source = ("v", seed % graph.num_vertices)
        ref_dist, _ = dijkstra(reference.adjacency(), source)
        int_dist, _ = interned.dijkstra(source)
        assert int_dist.to_dict() == ref_dist, f"{name}/seed={seed}"
        # The compiled arrays are cached: a second call returns the same
        # buffers, a mutation recompiles.
        assert interned.compiled_csr()[0] is offsets
        interned.add_edge(("fresh",), ("fresh2",), 1.0)
        offsets = interned.compiled_csr()[0]
        assert len(offsets) == interned.num_nodes + 1
        # Node-only mutations (no new arcs) must also recompile: offsets
        # spans num_nodes + 1 rows even for arc-less late-interned nodes.
        interned.intern(("late", "node"))
        offsets2, _, _ = interned.compiled_csr()
        assert len(offsets2) == interned.num_nodes + 1


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_near_small_walk_id_paths_match_tuple_reference(name):
    """Flat id-path walks == tuple-node walks on every (target, near-edge).

    Sweeping *all* near pairs (not just the finite-valued ones) also pins
    the unreachable case: both reconstructions must return ``[]``.
    """
    seed = 11
    graph = GENERATORS[name](seed)
    n = graph.num_vertices
    scale = ProblemScale(n, 1, AlgorithmParams(seed=seed))
    for source in {0, n - 1}:
        tree = bfs_tree_csr(graph, source)
        tables = compute_near_small_tables(graph, source, tree, scale, with_paths=True)
        checked = reachable = 0
        for target in range(n):
            if target == source:
                continue
            for edge, _ in near_edges_from_target(tree, target, scale):
                flat = tables.walk(target, edge)
                assert flat == tables.walk_reference(target, edge), (
                    f"{name}: walk({target}, {edge}) diverged"
                )
                checked += 1
                if flat:
                    reachable += 1
                    assert flat[0] == source and flat[-1] == target
                else:
                    assert tables.value(target, edge) == math.inf
        assert checked > 0 or n <= 1
        # Unknown (target, edge) pairs reconstruct to [] on both paths.
        assert tables.walk(n + 5, (0, 1)) == []
        assert tables.walk_reference(n + 5, (0, 1)) == []


def test_walk_without_paths_raises_on_both_variants():
    graph = generators.cycle_graph(6)
    tree = bfs_tree_csr(graph, 0)
    scale = ProblemScale(6, 1, AlgorithmParams())
    tables = compute_near_small_tables(graph, 0, tree, scale)
    with pytest.raises(InvalidParameterError):
        tables.walk(2, (0, 1))
    with pytest.raises(InvalidParameterError):
        tables.walk_reference(2, (0, 1))


def test_interned_dijkstra_rejects_negative_weights_upfront():
    interned = InternedAuxiliaryGraph()
    interned.add_edge(("a",), ("b",), 1.0)
    # The negative arc is unreachable from the source; the hoisted
    # per-graph validation must reject it anyway.
    interned.add_edge(("c",), ("d",), -2.0)
    with pytest.raises(ValueError):
        interned.dijkstra(("a",))


def test_interned_views_tolerate_nodes_interned_after_the_run():
    graph = InternedAuxiliaryGraph()
    graph.add_edge("a", "b", 1.0)
    dist, pred = graph.dijkstra("a", with_predecessors=True)
    graph.intern("late")
    # Views alias the live id dict but snapshot the run's arrays; late
    # interned nodes must behave like unreached ones, never raise.
    assert dist.get("late") is math.inf
    assert "late" not in dist
    assert "late" not in pred
    assert pred.get("late") is None
    with pytest.raises(KeyError):
        dist["late"]


def test_interned_raw_arc_appends_after_a_run_are_picked_up():
    graph = InternedAuxiliaryGraph()
    raw_src, raw_dst, raw_w = graph.arc_lists()  # saved before the run
    graph.add_edge("a", "b", 1.0)
    first, _ = graph.dijkstra("a")
    assert first.get("b") == 1.0
    z = graph.intern("z")
    raw_src.append(graph.id_of("a"))
    raw_dst.append(z)
    raw_w.append(2.0)
    # The raw appends bypassed arc_lists() invalidation; the stale-CSR
    # guard must recompile instead of silently dropping the new arc.
    dist, _ = graph.dijkstra("a")
    assert dist.get("z") == 2.0


def test_interned_builder_api_matches_reference_counts():
    reference = AuxiliaryGraphBuilder()
    interned = InternedAuxiliaryGraph()
    for builder in (reference, interned):
        builder.add_node("lonely")
        builder.add_edge("x", "y", 1.0)
        builder.add_edge("x", "z", 2.0)
        builder.add_edge("y", "z", 3.0)
    assert interned.num_nodes == reference.num_nodes == 4
    assert interned.num_edges == reference.num_edges == 3


@pytest.mark.slow
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_msrp_matches_bruteforce_extended(strategy):
    """Wider sweep of the same invariant: more seeds per generator."""
    for name, factory in sorted(GENERATORS.items()):
        for seed in range(10, 16):
            graph = factory(seed)
            sources = pick_sources(graph, seed, count=3)
            result = run_msrp(graph, sources, strategy, seed)
            reference = brute_force_multi_source(graph, sources)
            assert result.matches(reference), f"{name}/{strategy}/seed={seed}"


@pytest.mark.slow
def test_csr_bfs_equals_dict_bfs_extended():
    """Exhaustive CSR/dict equivalence: every root, every forbidden edge."""
    for name, factory in sorted(GENERATORS.items()):
        graph = factory(21)
        for root in range(graph.num_vertices):
            assert bfs_distances_csr(graph, root) == bfs_distances(graph, root)
        for edge in graph.edges():
            dict_tree = bfs_tree(graph, 0, forbidden_edge=edge)
            csr_tree = bfs_tree_csr(graph, 0, forbidden_edge=edge)
            assert csr_tree.parent == dict_tree.parent
            assert csr_tree.dist == dict_tree.dist
            assert csr_tree.order == dict_tree.order


@pytest.mark.slow
def test_ssrp_matches_bruteforce_on_random_instances():
    """SSRP spot check on larger connected instances (sigma = 1 regime)."""
    for seed in range(30, 34):
        graph = generators.random_connected_graph(28, extra_edges=30, seed=seed)
        source = seed % graph.num_vertices
        result = single_source_replacement_paths(
            graph, source, params=AlgorithmParams(seed=seed)
        )
        reference = {source: brute_force_single_source(graph, source)}
        assert result.matches(reference)
