"""Randomized invariant battery over every generator and both strategies.

Each case builds a seeded random (or structured) graph from one of the
generators in :mod:`repro.graph.generators` and checks the library's core
contracts against each other:

* **MSRP == brute force** — the efficient pipeline (both landmark
  strategies) agrees entry-for-entry with the per-edge BFS oracle.
* **SSRP == MSRP restricted to one source** — running the multi-source
  pipeline and projecting onto one source gives the same values as the
  single-source entry point.
* **Metric sanity** — every replacement length is at least the original
  distance, and is infinite exactly when the failed edge is a bridge whose
  removal separates the pair.
* **CSR BFS == dict BFS** — the flat kernel and the reference
  implementation produce identical distances, parents and orders on the
  same battery, with and without forbidden edges.

The default battery is sized to stay fast; the ``slow`` marked variants
rerun the same invariants over many more seeds (deselect in CI with
``-m "not slow"``).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.msrp import multiple_source_replacement_paths
from repro.core.params import AlgorithmParams
from repro.core.ssrp import single_source_replacement_paths
from repro.graph import generators
from repro.graph.bfs import bfs_distances, bfs_tree
from repro.graph.csr import bfs_distances_csr, bfs_tree_csr
from repro.rp.bruteforce import brute_force_multi_source, brute_force_single_source

#: name -> seeded factory covering every generator in the module.
GENERATORS = {
    "gnp": lambda seed: generators.gnp_random_graph(13, 0.3, seed=seed),
    "gnm": lambda seed: generators.gnm_random_graph(12, 18, seed=seed),
    "regular": lambda seed: generators.random_regular_graph(12, 3, seed=seed),
    "connected": lambda seed: generators.random_connected_graph(
        13, extra_edges=10, seed=seed
    ),
    "grid": lambda seed: generators.grid_graph(3, 4),
    "path": lambda seed: generators.path_graph(9),
    "cycle": lambda seed: generators.cycle_graph(8),
    "star": lambda seed: generators.star_graph(7),
    "complete": lambda seed: generators.complete_graph(6),
    "barbell": lambda seed: generators.barbell_graph(3, 3),
    "clusters": lambda seed: generators.path_with_clusters(7, 3, 2, seed=seed),
}

STRATEGIES = ("direct", "auxiliary")


def pick_sources(graph, seed, count=2):
    rng = random.Random(seed)
    count = min(count, max(1, graph.num_vertices))
    return sorted(rng.sample(range(graph.num_vertices), count))


def run_msrp(graph, sources, strategy, seed):
    params = AlgorithmParams(seed=seed)
    return multiple_source_replacement_paths(
        graph, sources, params=params, landmark_strategy=strategy
    )


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_msrp_matches_bruteforce(name, strategy):
    for seed in (1, 2):
        graph = GENERATORS[name](seed)
        sources = pick_sources(graph, seed)
        result = run_msrp(graph, sources, strategy, seed)
        reference = brute_force_multi_source(graph, sources)
        mismatches = result.differences_from(reference)
        assert not mismatches, (
            f"{name}/{strategy}/seed={seed}: {len(mismatches)} mismatches, "
            f"first: {mismatches[:3]}"
        )


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_ssrp_equals_msrp_restricted_to_one_source(name):
    seed = 5
    graph = GENERATORS[name](seed)
    sources = pick_sources(graph, seed)
    msrp = run_msrp(graph, sources, "direct", seed)
    for s in sources:
        ssrp = single_source_replacement_paths(
            graph, s, params=AlgorithmParams(seed=seed)
        )
        # Same canonical trees (BFS is deterministic), so the per-source
        # tables must agree key-for-key and value-for-value.
        assert ssrp.table(s) == msrp.table(s)


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_metric_sanity(name):
    seed = 7
    graph = GENERATORS[name](seed)
    sources = pick_sources(graph, seed)
    result = run_msrp(graph, sources, "direct", seed)
    for s, t, edge, value in result.iter_entries():
        original = result.distance(s, t)
        assert value >= original, (
            f"{name}: replacement |{s}{t} <> {edge}| = {value} shorter than "
            f"the original distance {original}"
        )
        truth = bfs_distances_csr(graph, s, forbidden_edge=edge)[t]
        assert (value == math.inf) == (truth == math.inf)
        if value == math.inf:
            # Only a bridge whose removal separates the pair may be
            # irreplaceable: its endpoints must fall apart without it.
            u, v = edge
            assert bfs_distances_csr(graph, u, forbidden_edge=edge)[v] == math.inf


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_csr_bfs_equals_dict_bfs(name):
    for seed in (3, 4):
        graph = GENERATORS[name](seed)
        n = graph.num_vertices
        rng = random.Random(seed)
        roots = {0, n - 1, rng.randrange(n)}
        for root in roots:
            assert bfs_distances_csr(graph, root) == bfs_distances(graph, root)
            dict_tree = bfs_tree(graph, root)
            csr_tree = bfs_tree_csr(graph, root)
            assert csr_tree.parent == dict_tree.parent
            assert csr_tree.dist == dict_tree.dist
            assert csr_tree.order == dict_tree.order
        edges = graph.edges()
        for edge in rng.sample(edges, min(4, len(edges))):
            assert bfs_distances_csr(graph, 0, forbidden_edge=edge) == bfs_distances(
                graph, 0, forbidden_edge=edge
            )


@pytest.mark.slow
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_msrp_matches_bruteforce_extended(strategy):
    """Wider sweep of the same invariant: more seeds per generator."""
    for name, factory in sorted(GENERATORS.items()):
        for seed in range(10, 16):
            graph = factory(seed)
            sources = pick_sources(graph, seed, count=3)
            result = run_msrp(graph, sources, strategy, seed)
            reference = brute_force_multi_source(graph, sources)
            assert result.matches(reference), f"{name}/{strategy}/seed={seed}"


@pytest.mark.slow
def test_csr_bfs_equals_dict_bfs_extended():
    """Exhaustive CSR/dict equivalence: every root, every forbidden edge."""
    for name, factory in sorted(GENERATORS.items()):
        graph = factory(21)
        for root in range(graph.num_vertices):
            assert bfs_distances_csr(graph, root) == bfs_distances(graph, root)
        for edge in graph.edges():
            dict_tree = bfs_tree(graph, 0, forbidden_edge=edge)
            csr_tree = bfs_tree_csr(graph, 0, forbidden_edge=edge)
            assert csr_tree.parent == dict_tree.parent
            assert csr_tree.dist == dict_tree.dist
            assert csr_tree.order == dict_tree.order


@pytest.mark.slow
def test_ssrp_matches_bruteforce_on_random_instances():
    """SSRP spot check on larger connected instances (sigma = 1 regime)."""
    for seed in range(30, 34):
        graph = generators.random_connected_graph(28, extra_edges=30, seed=seed)
        source = seed % graph.num_vertices
        result = single_source_replacement_paths(
            graph, source, params=AlgorithmParams(seed=seed)
        )
        reference = {source: brute_force_single_source(graph, source)}
        assert result.matches(reference)
