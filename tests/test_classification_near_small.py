"""Tests for near/far classification and the Section 7.1 construction."""

from __future__ import annotations

import math

import pytest

from repro.core.classification import (
    FAR,
    NEAR,
    classify_path_edges,
    iter_far_edges,
    iter_near_edges,
    near_edges_of_path,
)
from repro.core.near_small import compute_near_small_tables, near_edges_from_target
from repro.core.params import AlgorithmParams, ProblemScale
from repro.exceptions import InvalidParameterError
from repro.graph import generators
from repro.graph.bfs import bfs_distances, bfs_tree
from repro.graph.graph import normalize_edge


def _tiny_scale(n: int, sigma: int = 1, unit: float = 1.0) -> ProblemScale:
    """A scale whose base unit is exactly ``unit`` (no log factor)."""
    constant = unit / math.sqrt(n / sigma)
    return ProblemScale(
        n, sigma, AlgorithmParams(threshold_constant=constant, use_log_factor=False)
    )


class TestClassification:
    def test_partition_is_complete_and_disjoint(self):
        path = list(range(30))
        scale = _tiny_scale(900)  # base unit = 30
        classified = classify_path_edges(path, scale)
        assert len(classified) == 29
        assert {c.index for c in classified} == set(range(29))
        assert all(c.kind in (NEAR, FAR) for c in classified)

    def test_distance_to_target_definition(self):
        path = [5, 6, 7, 8]
        scale = _tiny_scale(16, unit=0.1)
        classified = classify_path_edges(path, scale)
        assert [c.distance_to_target for c in classified] == [2, 1, 0]

    def test_near_far_threshold(self):
        # base_unit = 2 -> near edges are those closer than 4 to the target.
        path = list(range(20))
        scale = _tiny_scale(4, unit=2.0)
        classified = classify_path_edges(path, scale)
        for c in classified:
            if c.distance_to_target < 4:
                assert c.is_near and c.far_level == -1
            else:
                assert c.is_far and c.far_level >= 0

    def test_far_levels_grow_with_distance(self):
        path = list(range(200))
        scale = _tiny_scale(4, unit=1.0)
        far = [c for c in classify_path_edges(path, scale) if c.is_far]
        levels = [c.far_level for c in sorted(far, key=lambda c: c.distance_to_target)]
        assert levels == sorted(levels)

    def test_near_edges_of_path_matches_full_classification(self):
        path = list(range(25))
        scale = _tiny_scale(25, 1, unit=0.5)
        expected = {(c.edge, c.index) for c in classify_path_edges(path, scale) if c.is_near}
        assert set(near_edges_of_path(path, scale)) == expected

    def test_iterators(self):
        path = list(range(40))
        scale = _tiny_scale(16, unit=1.0)
        classified = classify_path_edges(path, scale)
        assert len(list(iter_near_edges(classified))) + len(
            list(iter_far_edges(classified))
        ) == len(classified)


class TestNearEdgesFromTarget:
    def test_matches_path_suffix(self):
        g = generators.path_graph(12)
        tree = bfs_tree(g, 0)
        scale = _tiny_scale(12, unit=1.5)  # near threshold = 3
        got = near_edges_from_target(tree, 11, scale)
        assert [e for e, _ in got] == [(10, 11), (9, 10), (8, 9)]
        assert [d for _, d in got] == [0, 1, 2]

    def test_unreachable_target_is_empty(self):
        g = generators.path_graph(3)
        tree = bfs_tree(g, 0)
        scale = _tiny_scale(3)
        from repro.graph.graph import Graph

        island = Graph(4, [(0, 1)])
        island_tree = bfs_tree(island, 0)
        assert near_edges_from_target(island_tree, 3, scale) == []


class TestNearSmallTables:
    def test_values_match_brute_force_when_small(self):
        # On a cycle every replacement path is "large"; on a dense graph the
        # replacements are short and must match the exact distances.
        g = generators.complete_graph(6)
        tree = bfs_tree(g, 0)
        scale = ProblemScale(6, 1, AlgorithmParams())
        tables = compute_near_small_tables(g, 0, tree, scale)
        for target in range(1, 6):
            edge = normalize_edge(0, target)
            truth = bfs_distances(g, 0, forbidden_edge=edge)[target]
            assert tables.value(target, edge) == truth

    def test_values_are_never_underestimates(self):
        g = generators.path_with_clusters(10, 3, 2, seed=4)
        tree = bfs_tree(g, 0)
        scale = ProblemScale(g.num_vertices, 1, AlgorithmParams())
        tables = compute_near_small_tables(g, 0, tree, scale)
        for (target, edge) in tables.known_pairs():
            truth = bfs_distances(g, 0, forbidden_edge=edge)[target]
            assert tables.value(target, edge) >= truth

    def test_walk_reconstruction_is_valid_and_avoids_edge(self):
        g = generators.grid_graph(3, 4)
        tree = bfs_tree(g, 0)
        scale = ProblemScale(12, 1, AlgorithmParams())
        tables = compute_near_small_tables(g, 0, tree, scale, with_paths=True)
        checked = 0
        for (target, edge) in tables.known_pairs():
            walk = tables.walk(target, edge)
            assert walk[0] == 0 and walk[-1] == target
            assert all(g.has_edge(walk[i], walk[i + 1]) for i in range(len(walk) - 1))
            assert normalize_edge(*edge) not in {
                normalize_edge(walk[i], walk[i + 1]) for i in range(len(walk) - 1)
            }
            assert len(walk) - 1 == tables.value(target, edge)
            checked += 1
        assert checked > 0

    def test_walk_requires_with_paths(self):
        g = generators.cycle_graph(5)
        tree = bfs_tree(g, 0)
        scale = ProblemScale(5, 1, AlgorithmParams())
        tables = compute_near_small_tables(g, 0, tree, scale)
        with pytest.raises(InvalidParameterError):
            tables.walk(2, (0, 1))

    def test_unknown_pair_is_infinite(self):
        g = generators.cycle_graph(5)
        tree = bfs_tree(g, 0)
        scale = ProblemScale(5, 1, AlgorithmParams())
        tables = compute_near_small_tables(g, 0, tree, scale)
        assert tables.value(99, (0, 1)) is math.inf

    def test_known_pairs_rejects_arithmetic_infinities(self):
        """Regression: the finite filter must not rely on the inf singleton.

        ``float("inf")`` and arithmetic like ``math.inf + 1`` produce float
        objects that are *not* ``math.inf`` by identity; an ``is``-based
        filter would classify them as finite.  ``known_pairs`` must filter
        by value (``math.isinf``), not identity.
        """
        from repro.core.near_small import NearSmallTables

        arithmetic_inf = math.inf + 1.0
        values = {
            (1, (0, 1)): math.inf,        # the singleton
            (2, (0, 2)): float("inf"),    # parsed infinity
            (3, (0, 3)): arithmetic_inf,  # arithmetic-produced infinity
            (4, (0, 4)): 3.0,
        }
        tables = NearSmallTables(0, values)
        assert tables.known_pairs() == [(4, (0, 4))]
