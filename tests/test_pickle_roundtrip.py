"""Pickle round-trip equivalence battery for the compiled substrates.

The process-sharded pipeline (:mod:`repro.parallel`) ships graphs, trees
and auxiliary graphs across process boundaries — under ``spawn`` every
context object is pickled once per worker, and every task result is
pickled on the way back.  These tests pin the contract the scheduler
relies on: a round-tripped substrate answers **every** query identically
to the original, lazy caches are dropped (not silently shipped) and
rebuild on demand, and the ``math.inf`` singleton identity the hot paths
test with ``is`` survives restoration.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.core.msrp import MSRPSolver
from repro.core.params import AlgorithmParams
from repro.exceptions import InvalidParameterError
from repro.graph import generators
from repro.graph.csr import CSRGraph, bfs_distances_csr, bfs_tree_csr
from repro.graph.graph import Graph
from repro.rp.dijkstra import (
    AuxiliaryGraphBuilder,
    InternedAuxiliaryGraph,
    dijkstra,
    reconstruct_path,
)


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.fixture
def graph() -> Graph:
    return generators.random_connected_graph(28, extra_edges=40, seed=7)


class TestGraphPickle:
    def test_equality_and_queries(self, graph):
        copy = roundtrip(graph)
        assert copy == graph
        assert copy.num_vertices == graph.num_vertices
        assert copy.edges() == graph.edges()
        for v in graph.vertices():
            assert copy.neighbors(v) == graph.neighbors(v)
        u, v = graph.edges()[0]
        assert copy.has_edge(u, v) and copy.has_edge(v, u)
        assert not copy.has_edge(0, 0)

    def test_csr_cache_dropped_and_rebuilt(self, graph):
        graph.csr()  # materialise the cache on the original
        copy = roundtrip(graph)
        assert copy._csr is None
        assert bfs_distances_csr(copy, 0) == bfs_distances_csr(graph, 0)

    def test_disconnected_graph(self):
        g = Graph(5, [(0, 1), (3, 4)])
        copy = roundtrip(g)
        assert copy == g
        assert bfs_distances_csr(copy, 0) == bfs_distances_csr(g, 0)


class TestCSRGraphPickle:
    def test_rows_and_flat_arrays(self, graph):
        csr = graph.csr()
        _ = csr.offsets  # materialise the lazy flat pair
        copy = roundtrip(csr)
        assert copy.rows == csr.rows
        assert copy._offsets is None  # dropped, rebuilds lazily
        assert list(copy.offsets) == list(csr.offsets)
        assert list(copy.neighbors) == list(csr.neighbors)
        assert copy.has_edge(*graph.edges()[0])

    def test_traversal_equivalence(self, graph):
        csr = graph.csr()
        copy = roundtrip(csr)
        for root in (0, 5, 17):
            ours = bfs_tree_csr(copy, root)
            theirs = bfs_tree_csr(csr, root)
            assert ours.dist == theirs.dist
            assert ours.parent == theirs.parent
            assert ours.order == theirs.order


class TestShortestPathTreePickle:
    def test_without_structural_caches(self, graph):
        tree = bfs_tree_csr(graph, 0)
        assert not tree.has_structural_cache
        copy = roundtrip(tree)
        assert not copy.has_structural_cache
        assert copy.dist == tree.dist
        assert copy.parent == tree.parent
        assert copy.order == tree.order

    def test_with_structural_caches_materialised(self, graph):
        tree = bfs_tree_csr(graph, 3)
        tree.euler_intervals()
        tree.edge_child_map()
        tree.children(3)
        tree.preorder()
        assert tree.has_structural_cache
        copy = roundtrip(tree)
        # Caches are dropped on the wire and rebuilt on demand ...
        assert not copy.has_structural_cache
        # ... with identical answers to the original's cached structures.
        for v in range(graph.num_vertices):
            assert copy.distance(v) == tree.distance(v)
            assert copy.is_reachable(v) == tree.is_reachable(v)
            assert copy.children(v) == tree.children(v)
            assert copy.subtree_size(v) == tree.subtree_size(v)
            if tree.is_reachable(v):
                assert copy.path_to(v) == tree.path_to(v)
        assert copy.preorder() == tree.preorder()
        for edge in graph.edges():
            assert copy.edge_child(edge) == tree.edge_child(edge)
            for target in (0, 9, 20):
                assert copy.tree_path_uses_edge(edge, target) == (
                    tree.tree_path_uses_edge(edge, target)
                )
                assert copy.distance_avoiding(edge, target) == (
                    tree.distance_avoiding(edge, target)
                )

    def test_inf_singleton_identity_restored(self):
        g = Graph(5, [(0, 1), (1, 2), (3, 4)])
        tree = bfs_tree_csr(g, 0)
        copy = roundtrip(tree)
        # Hot paths use ``dist[v] is math.inf`` for unreachability; a plain
        # unpickle would produce a *different* inf object and silently turn
        # those tests false.
        assert copy.dist[3] is math.inf
        assert copy.dist[4] is math.inf
        assert copy.distance_avoiding((0, 1), 3) is math.inf


class TestReplacementPathResultPickle:
    """Regressions for the default-reduce pickling hole.

    ``ReplacementPathResult`` uses ``__slots__``; without explicit state
    methods the default reduce restores the slots directly and skips the
    constructor's ``math.inf`` re-canonicalisation, so an unpickled table
    could hold infs that are ``== math.inf`` but not ``is math.inf`` —
    silently breaking the identity invariant the fingerprints and hot
    paths rely on.  The explicit ``__getstate__``/``__setstate__`` pair
    routes restoration through the constructor and keeps the graph
    reference, so edge validation survives the round-trip too.
    """

    def _solve(self, graph, seed=5):
        sources = generators.random_sources(graph, 2, seed=seed)
        solver = MSRPSolver(
            graph, sources, params=AlgorithmParams(seed=seed)
        )
        return solver.solve()

    def test_values_and_trees_survive(self, graph):
        result = self._solve(graph)
        copy = roundtrip(result)
        assert list(copy.iter_entries()) == list(result.iter_entries())
        assert copy.sources == result.sources
        for s in result.sources:
            assert copy.source_tree(s).dist == result.source_tree(s).dist
            assert copy.targets(s) == result.targets(s)

    def test_inf_identity_restored(self):
        # A path graph: every edge is a bridge, every replacement is inf.
        g = generators.path_graph(7)
        result = self._solve(g, seed=2)
        copy = roundtrip(result)
        saw_inf = False
        for _s, _t, _e, value in copy.iter_entries():
            if value == math.inf:
                assert value is math.inf
                saw_inf = True
        assert saw_inf, "path graph must produce infinite replacements"

    def test_graph_reference_survives_and_validates(self, graph):
        result = self._solve(graph)
        assert result.graph is not None
        copy = roundtrip(result)
        # The graph rides along ...
        assert copy.graph == result.graph
        # ... so a non-edge query is still rejected after the round-trip
        # (the exact hole PR 4 closed for the graph-backed path).
        non_edge = next(
            (u, v)
            for u in range(graph.num_vertices)
            for v in range(u + 1, graph.num_vertices)
            if not graph.has_edge(u, v)
        )
        s = copy.sources[0]
        t = copy.targets(s)[0]
        with pytest.raises(InvalidParameterError, match="not an edge"):
            copy.replacement_length(s, t, non_edge)

    def test_replacement_queries_identical(self, graph):
        result = self._solve(graph)
        copy = roundtrip(result)
        for s, t, e, value in result.iter_entries():
            assert copy.replacement_length(s, t, e) == value


class TestInternedAuxiliaryGraphPickle:
    def _build(self):
        aux = InternedAuxiliaryGraph()
        ref = AuxiliaryGraphBuilder()
        edges = [
            (("s",), ("v", 1), 0.0),
            (("s",), ("v", 2), 2.0),
            (("v", 1), ("ve", 3, (1, 3)), 1.0),
            (("v", 2), ("ve", 3, (1, 3)), 1.0),
            (("ve", 3, (1, 3)), ("ve", 4, (3, 4)), 1.0),
            (("v", 2), ("v", 1), 5.0),
        ]
        for u, v, w in edges:
            aux.add_edge(u, v, w)
            ref.add_edge(u, v, w)
        return aux, ref

    def test_distances_and_paths_after_roundtrip(self):
        aux, ref = self._build()
        copy = roundtrip(aux)
        ref_dist, ref_pred = dijkstra(ref.adjacency(), ("s",), with_predecessors=True)
        dist, pred = copy.dijkstra(("s",), with_predecessors=True)
        assert dist.to_dict() == ref_dist
        target = ("ve", 4, (3, 4))
        assert reconstruct_path(pred, ("s",), target) == reconstruct_path(
            ref_pred, ("s",), target
        )

    def test_compiled_csr_dropped_and_recompiled(self):
        aux, _ = self._build()
        before = aux.dijkstra(("s",))[0].to_dict()
        offsets, targets, weights = aux.compiled_csr()
        copy = roundtrip(aux)
        assert copy._csr_offsets is None  # cache dropped on the wire
        c_offsets, c_targets, c_weights = copy.compiled_csr()
        assert list(c_offsets) == list(offsets)
        assert list(c_targets) == list(targets)
        assert list(c_weights) == list(weights)
        assert copy.dijkstra(("s",))[0].to_dict() == before

    def test_intern_table_rebuilt(self):
        aux, _ = self._build()
        copy = roundtrip(aux)
        assert copy.num_nodes == aux.num_nodes
        assert copy.num_edges == aux.num_edges
        for node_id in range(aux.num_nodes):
            node = aux.node_of(node_id)
            assert copy.node_of(node_id) == node
            assert copy.id_of(node) == node_id
        # Interning after restore continues the dense id sequence.
        assert copy.intern(("new",)) == aux.num_nodes
