"""End-to-end tests for the asyncio query server and its client.

A real store is written to disk, a real server is started on an ephemeral
port, and a real HTTP client queries it — the full
``preprocess -> store -> serve -> query`` lifecycle in-process.  The
contract under test is the serving layer's version of byte-identical
parallelism: every answer fetched over the wire equals the in-process
solve's answer, with infinite lengths arriving as *the* ``math.inf``
singleton.
"""

from __future__ import annotations

import json
import math
import urllib.request

import pytest

from repro.core.msrp import MSRPSolver
from repro.core.params import AlgorithmParams
from repro.exceptions import InvalidParameterError
from repro.graph import generators
from repro.serve import QueryClient, RemoteQueryError, ServerThread, SliceCache
from repro.store import write_store


@pytest.fixture(scope="module")
def instance():
    graph = generators.random_connected_graph(24, extra_edges=26, seed=11)
    sources = generators.random_sources(graph, 3, seed=11)
    solver = MSRPSolver(
        graph,
        sources,
        params=AlgorithmParams(seed=11),
        landmark_strategy="auxiliary",
    )
    return graph, solver, solver.solve()


@pytest.fixture(scope="module")
def served(instance, tmp_path_factory):
    graph, solver, result = instance
    directory = str(tmp_path_factory.mktemp("store"))
    write_store(directory, result, meta=solver.store_metadata())
    with ServerThread.from_store(directory) as handle:
        with QueryClient(port=handle.port) as client:
            yield graph, result, handle, client


class TestPointQueries:
    def test_every_stored_entry_matches_in_process(self, served):
        _graph, result, _handle, client = served
        for s, t, e, value in result.iter_entries():
            got = client.query(s, t, e)
            assert got == value
            if value == math.inf:
                assert got is math.inf

    def test_off_path_edge_returns_tree_distance(self, served):
        graph, result, _handle, client = served
        s = result.sources[0]
        tree = result.source_tree(s)
        # An edge not on the canonical s-t path leaves the distance alone.
        for t in result.targets(s):
            per_target = result.table(s)[t]
            off_path = next(
                (e for e in graph.edges() if e not in per_target), None
            )
            if off_path is not None:
                assert client.query(s, t, off_path) == result.replacement_length(
                    s, t, off_path
                )
                break
        else:  # pragma: no cover - battery graphs always have off-path edges
            pytest.skip("no off-path edge in instance")

    def test_batch_matches_point_queries(self, served):
        _graph, result, _handle, client = served
        queries = [(s, t, e) for s, t, e, _ in list(result.iter_entries())[:25]]
        answers = client.query_batch(queries)
        assert answers == [result.replacement_length(*q) for q in queries]

    def test_sweep_covers_every_vertex(self, served):
        graph, result, _handle, client = served
        s = result.sources[0]
        t = result.targets(s)[0]
        edge = next(iter(result.table(s)[t]))
        lengths = client.sweep(s, edge)
        assert set(lengths) == set(range(graph.num_vertices))
        for target, value in lengths.items():
            assert value == result.replacement_length(s, target, edge)


class TestValidation:
    def test_non_edge_rejected_with_local_exception_type(self, served):
        graph, result, _handle, client = served
        non_edge = next(
            (u, v)
            for u in range(graph.num_vertices)
            for v in range(u + 1, graph.num_vertices)
            if not graph.has_edge(u, v)
        )
        s = result.sources[0]
        with pytest.raises(InvalidParameterError, match="not an edge"):
            client.query(s, 0, non_edge)

    def test_unknown_source_rejected(self, served):
        graph, result, _handle, client = served
        bad = next(v for v in range(graph.num_vertices) if v not in result.sources)
        with pytest.raises(InvalidParameterError, match="not one of the served sources"):
            client.query(bad, 0, graph.edges()[0])

    def test_out_of_range_target_rejected(self, served):
        graph, result, _handle, client = served
        with pytest.raises(InvalidParameterError, match="outside the vertex range"):
            client.query(result.sources[0], graph.num_vertices + 5, graph.edges()[0])

    def test_batch_reports_per_item_errors(self, served):
        graph, result, _handle, client = served
        s = result.sources[0]
        good = graph.edges()[0]
        non_edge = next(
            (u, v)
            for u in range(graph.num_vertices)
            for v in range(u + 1, graph.num_vertices)
            if not graph.has_edge(u, v)
        )
        # The good item resolves, the bad one raises client-side with the
        # same exception type an in-process query would have raised.
        with pytest.raises(InvalidParameterError, match="not an edge"):
            client.query_batch([(s, 0, good), (s, 0, non_edge)])

    def test_graphless_result_rejected_with_clear_message(self, instance):
        """A result without its graph names the real problem.

        Regression: the vertex check used to fall back to ``n = 0`` and
        report "outside the vertex range 0..-1" — nonsense that hid the
        actual misconfiguration (the served result carries no graph).
        """
        from repro.serve import OracleService

        _graph, _solver, result = instance
        stripped = type(result)(
            result.to_dict(),
            {s: result.source_tree(s) for s in result.sources},
        )
        service = OracleService(stripped)
        s = result.sources[0]
        with pytest.raises(InvalidParameterError, match="carries no graph"):
            service.point_query(s, 0, (0, 1))
        try:
            service.point_query(s, 0, (0, 1))
        except InvalidParameterError as exc:
            assert "0..-1" not in str(exc)

    def test_unknown_path_is_remote_error(self, served):
        _graph, _result, handle, _client = served
        with QueryClient(port=handle.port) as client:
            with pytest.raises(RemoteQueryError, match="unknown path"):
                client._request("GET", "/nope")

    def test_unreachable_server(self):
        client = QueryClient(port=1, timeout=0.5)
        with pytest.raises(RemoteQueryError, match="unreachable"):
            client.status()


class TestStatusAndCache:
    def test_status_reports_store_and_counters(self, served):
        _graph, result, handle, client = served
        status = client.status()
        store = status["store"]
        assert store["num_vertices"] == 24
        assert store["sources"] == list(result.sources)
        assert store["strategy"] == "auxiliary"
        assert status["output_entries"] == result.output_size
        assert status["uptime_seconds"] > 0
        cache = status["cache"]
        assert cache["capacity"] == handle.service.cache.capacity
        assert 0.0 <= cache["hit_rate"] <= 1.0

    def test_repeated_queries_hit_the_slice_cache(self, instance, tmp_path):
        _graph, solver, result = instance
        directory = str(tmp_path / "store")
        write_store(directory, result)
        with ServerThread.from_store(directory) as handle:
            with QueryClient(port=handle.port) as client:
                s, t, e, _ = next(result.iter_entries())
                client.query(s, t, e)
                first = client.status()["cache"]
                assert first["misses"] >= 1
                for _ in range(5):
                    client.query(s, t, e)
                second = client.status()["cache"]
                assert second["hits"] >= first["hits"] + 5
                assert second["misses"] == first["misses"]

    def test_status_reports_both_qps_figures(self, served):
        """/status carries the lifetime average AND the sliding window.

        Regression: ``qps`` alone (total / uptime) decays toward zero on
        a long-lived server regardless of current load; the window rate
        is the honest signal and must be present alongside it.
        """
        _graph, result, handle, client = served
        s, t, e, _ = next(result.iter_entries())
        client.query(s, t, e)
        status = client.status()
        assert status["qps"] >= 0.0
        assert status["qps_window_seconds"] >= 1
        # The query above landed inside the current window.
        assert status["qps_recent"] > 0.0

    def test_rate_window_tracks_recent_load_only(self):
        """Deterministic clock: bursts age out, lifetime average cannot."""
        from repro.serve import RateWindow

        now = [1000.0]
        window = RateWindow(window=10, clock=lambda: now[0])
        for _ in range(40):
            window.note()
        assert window.rate() == 4.0
        now[0] += 5  # burst still inside the window
        assert window.rate() == 4.0
        now[0] += 20  # burst aged out entirely
        assert window.rate() == 0.0
        window.note()
        assert window.rate() == pytest.approx(0.1)

    def test_rate_window_rejects_degenerate_span(self):
        from repro.serve import RateWindow

        with pytest.raises(InvalidParameterError, match="at least 1"):
            RateWindow(window=0)

    def test_raw_http_status_is_strict_json(self, served):
        _graph, _result, handle, _client = served
        with urllib.request.urlopen(
            f"http://127.0.0.1:{handle.port}/status", timeout=5
        ) as response:
            payload = json.loads(response.read().decode("utf-8"))
        assert payload["store"]["format_version"] == 1


class TestSliceCache:
    def test_lru_eviction_order(self):
        cache = SliceCache(capacity=2)
        cache.put((0, (0, 1)), {0: 1.0})
        cache.put((0, (0, 2)), {0: 2.0})
        assert cache.get((0, (0, 1))) == {0: 1.0}  # refresh
        cache.put((0, (0, 3)), {0: 3.0})  # evicts (0, 2)
        assert cache.get((0, (0, 2))) is None
        assert cache.get((0, (0, 1))) is not None
        assert len(cache) == 2

    def test_zero_capacity_never_stores(self):
        cache = SliceCache(capacity=0)
        cache.put((0, (0, 1)), {0: 1.0})
        assert len(cache) == 0
        assert cache.get((0, (0, 1))) is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(InvalidParameterError):
            SliceCache(capacity=-1)
