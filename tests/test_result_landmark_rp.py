"""Tests for the result container and the landmark replacement tables."""

from __future__ import annotations

import math

import pytest

from repro.core.landmark_rp import compute_direct_tables
from repro.core.msrp import multiple_source_replacement_paths
from repro.core.params import AlgorithmParams
from repro.core.result import ReplacementPathResult
from repro.exceptions import InvalidParameterError, NotOnPathError
from repro.graph import generators
from repro.graph.bfs import bfs_distances, bfs_tree
from repro.graph.graph import Graph


class TestReplacementPathResult:
    @pytest.fixture
    def result(self):
        g = generators.cycle_graph(7)
        return multiple_source_replacement_paths(g, [0, 3], params=AlgorithmParams(seed=1))

    def test_sources(self, result):
        assert result.sources == (0, 3)

    def test_distance_and_canonical_path(self, result):
        assert result.distance(0, 3) == 3
        path = result.canonical_path(0, 3)
        assert path[0] == 0 and path[-1] == 3 and len(path) == 4

    def test_replacement_length_on_and_off_path(self, result):
        path = result.canonical_path(0, 3)
        on_path_edge = (path[0], path[1])
        assert result.replacement_length(0, 3, on_path_edge) == 4
        off_path = [e for e in generators.cycle_graph(7).edges() if set(e) not in
                    [set((path[i], path[i + 1])) for i in range(3)]][0]
        assert result.replacement_length(0, 3, off_path) == 3

    def test_unknown_source_rejected(self, result):
        with pytest.raises(InvalidParameterError):
            result.replacement_length(1, 3, (0, 1))

    def test_output_size_counts_every_entry(self, result):
        assert result.output_size == sum(
            len(per_t) for s in result.sources for per_t in result.table(s).values()
        )

    def test_to_dict_roundtrip_and_matches(self, result):
        data = result.to_dict()
        assert result.matches(data)
        data[0][3].popitem()
        # A missing entry must be reported as a difference.
        assert not result.matches(data)

    def test_incomplete_table_detected(self):
        g = generators.path_graph(4)
        tree = bfs_tree(g, 0)
        incomplete = ReplacementPathResult({0: {3: {}}}, {0: tree})
        with pytest.raises(NotOnPathError):
            incomplete.replacement_length(0, 3, (1, 2))

    def test_missing_tree_rejected(self):
        with pytest.raises(InvalidParameterError):
            ReplacementPathResult({0: {}}, {})

    def test_unreachable_target_is_infinite(self):
        g = Graph(4, [(0, 1), (2, 3)])
        result = multiple_source_replacement_paths(g, [0], params=AlgorithmParams(seed=1))
        assert result.replacement_length(0, 3, (2, 3)) is math.inf

    def test_nonexistent_edge_rejected(self, result):
        # Regression: a pair that is not an edge of the graph at all used to
        # fall into the "not on the canonical path" branch and silently
        # return the intact tree distance d(s, t).
        with pytest.raises(InvalidParameterError):
            result.replacement_length(0, 3, (13, 17))  # endpoints not vertices
        with pytest.raises(InvalidParameterError):
            result.replacement_length(0, 3, (0, 2))  # vertices, but no edge

    def test_nonexistent_edge_rejected_without_graph(self):
        # Results built without a graph reference can still reject pairs
        # whose endpoints fall outside the vertex range.
        g = generators.path_graph(4)
        tree = bfs_tree(g, 0)
        result = ReplacementPathResult({0: {3: {}}}, {0: tree})
        with pytest.raises(InvalidParameterError):
            result.replacement_length(0, 3, (13, 17))

    def test_integer_like_source_and_target_coerced(self, result):
        # Regression: accessors must coerce targets the way the constructor
        # coerces source keys, so integer-like values (bool, numpy-style
        # scalars) address the stored entries instead of silently falling
        # into the "not stored" branch.
        class IntLike:
            """Stand-in for a numpy integer scalar: int()-able, odd hash."""

            def __init__(self, value):
                self._value = value

            def __int__(self):
                return self._value

            def __index__(self):
                return self._value

        path = result.canonical_path(0, 3)
        edge = (path[0], path[1])
        expected = result.replacement_length(0, 3, edge)
        assert result.replacement_length(IntLike(0), IntLike(3), edge) == expected
        assert result.replacement_lengths(0, IntLike(3)) == (
            result.replacement_lengths(0, 3)
        )
        assert result.targets(IntLike(0)) == result.targets(0)
        assert result.distance(IntLike(0), IntLike(3)) == result.distance(0, 3)
        # bool is the sneakiest integer-like: True must mean target 1.
        assert result.replacement_lengths(0, True) == result.replacement_lengths(0, 1)

    def test_fractional_indices_rejected(self, result):
        # Coercion must not silently truncate: 0.7 is not a vertex id.
        with pytest.raises(TypeError):
            result.distance(0.7, 3)
        with pytest.raises(TypeError):
            result.distance(0, 3.5)


class TestSourceLandmarkTables:
    def test_direct_tables_match_per_edge_bfs(self):
        g = generators.grid_graph(3, 4)
        trees = {0: bfs_tree(g, 0), 5: bfs_tree(g, 5)}
        landmarks = [2, 7, 11]
        tables = compute_direct_tables(g, trees, landmarks)
        for s, tree in trees.items():
            for r in landmarks:
                for edge in tree.path_edges_to(r):
                    truth = bfs_distances(g, s, forbidden_edge=edge)[r]
                    assert tables.query(s, r, edge) == truth

    def test_query_falls_back_off_path(self):
        g = generators.cycle_graph(6)
        trees = {0: bfs_tree(g, 0)}
        tables = compute_direct_tables(g, trees, [2])
        assert tables.query(0, 2, (3, 4)) == 2  # edge not on the 0-2 path

    def test_query_unreachable_landmark_is_infinite(self):
        g = Graph(4, [(0, 1), (2, 3)])
        trees = {0: bfs_tree(g, 0)}
        tables = compute_direct_tables(g, trees, [3])
        assert tables.query(0, 3, (2, 3)) is math.inf

    def test_unknown_source_rejected(self):
        g = generators.cycle_graph(4)
        tables = compute_direct_tables(g, {0: bfs_tree(g, 0)}, [2])
        with pytest.raises(InvalidParameterError):
            tables.query(1, 2, (0, 1))

    def test_num_entries(self):
        g = generators.path_graph(5)
        tables = compute_direct_tables(g, {0: bfs_tree(g, 0)}, [4])
        assert tables.num_entries == 4
