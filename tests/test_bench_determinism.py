"""The e2e benchmark harness must be bit-deterministic run to run.

Perf PRs justify themselves by diffing ``BENCH_msrp.json`` wall times at
*identical* output fingerprints.  That argument only holds if the harness
itself is deterministic: same sizes, same seeds, same solver outputs, same
entry counts and checksums on every invocation.  This test runs the
``--fast`` suite twice in-process and asserts the fingerprints agree, so a
perf change can never silently alter what is being computed.
"""

from __future__ import annotations

import json

from benchmarks.bench_msrp_e2e import main


def _load_runs(path):
    with open(path) as handle:
        payload = json.load(handle)
    return {run["key"]: run for run in payload["runs"]}


def test_fast_harness_fingerprints_are_deterministic(tmp_path):
    paths = [tmp_path / "first.json", tmp_path / "second.json"]
    for path in paths:
        assert main(["--fast", "--json", str(path)]) == 0
    first, second = (_load_runs(path) for path in paths)

    assert first.keys() == second.keys()
    assert first, "harness produced no runs"
    for key in first:
        fp_first = first[key]["fingerprint"]
        fp_second = second[key]["fingerprint"]
        assert fp_first == fp_second, f"{key}: fingerprints diverged"
        assert fp_first["entries"] > 0
        # The breakdown keys are always present (zero under "direct").
        assert set(first[key]["aux_breakdown"]) == {"tables", "walks", "assembly"}
