"""Regression tests for boundary inputs across the whole stack.

Collected here per the CSR-kernel issue: disconnected graphs, empty and
single-vertex graphs, the ``sigma = 1`` regime, star and bridge-heavy
instances, and the tightened ``Graph.from_adjacency`` contract.
"""

from __future__ import annotations

import math

import pytest

from repro.core.msrp import multiple_source_replacement_paths
from repro.core.params import AlgorithmParams
from repro.core.ssrp import single_source_replacement_paths
from repro.exceptions import GraphError, InvalidParameterError
from repro.graph import generators
from repro.graph.csr import bfs_distances_csr, bfs_many, bfs_tree_csr
from repro.graph.graph import Graph
from repro.rp.bruteforce import brute_force_multi_source, brute_force_single_source


class TestDisconnectedGraphs:
    def test_msrp_reports_only_reachable_targets(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])  # vertex 5 isolated
        result = multiple_source_replacement_paths(
            g, [0, 3], params=AlgorithmParams(seed=1)
        )
        assert result.targets(0) == [1, 2]
        assert result.targets(3) == [4]
        assert result.matches(brute_force_multi_source(g, [0, 3]))

    def test_csr_bfs_marks_other_components_unreachable(self):
        g = Graph(5, [(0, 1), (3, 4)])
        dist = bfs_distances_csr(g, 0)
        assert dist == [0, 1, math.inf, math.inf, math.inf]
        tree = bfs_tree_csr(g, 3)
        assert tree.reachable_vertices() == [3, 4]
        assert not tree.is_reachable(0)

    def test_replacement_across_components_never_appears(self):
        g = Graph(4, [(0, 1), (2, 3)])
        answer = brute_force_single_source(g, 0)
        assert sorted(answer) == [1]
        assert answer[1] == {(0, 1): math.inf}


class TestDegenerateGraphs:
    def test_empty_graph(self):
        g = Graph(0)
        assert g.num_vertices == 0 and g.num_edges == 0
        assert bfs_many(g, []) == {}
        with pytest.raises(InvalidParameterError):
            bfs_distances_csr(g, 0)
        with pytest.raises(InvalidParameterError):
            multiple_source_replacement_paths(g, [0])

    def test_single_vertex_graph(self):
        g = Graph(1)
        assert bfs_distances_csr(g, 0) == [0]
        tree = bfs_tree_csr(g, 0)
        assert tree.order == [0] and tree.parent == [None]
        result = single_source_replacement_paths(g, 0, params=AlgorithmParams(seed=2))
        assert result.targets(0) == []
        assert result.matches({0: {}})

    def test_two_isolated_vertices(self):
        g = Graph(2)
        result = multiple_source_replacement_paths(
            g, [0, 1], params=AlgorithmParams(seed=3)
        )
        assert result.targets(0) == []
        assert result.targets(1) == []


class TestSigmaOne:
    def test_ssrp_equals_bruteforce(self):
        g = generators.random_connected_graph(20, extra_edges=18, seed=4)
        result = single_source_replacement_paths(g, 5, params=AlgorithmParams(seed=4))
        assert result.matches({5: brute_force_single_source(g, 5)})

    def test_msrp_with_one_source_equals_ssrp(self):
        g = generators.grid_graph(3, 5)
        params = AlgorithmParams(seed=5)
        msrp = multiple_source_replacement_paths(g, [0], params=params)
        ssrp = single_source_replacement_paths(g, 0, params=params)
        assert msrp.table(0) == ssrp.table(0)


class TestStarAndBridgeHeavyGraphs:
    def test_star_graph_every_edge_is_irreplaceable(self):
        g = generators.star_graph(6)
        result = single_source_replacement_paths(g, 0, params=AlgorithmParams(seed=6))
        for leaf in range(1, 7):
            assert result.replacement_length(0, leaf, (0, leaf)) == math.inf
        assert result.matches({0: brute_force_single_source(g, 0)})

    def test_star_from_leaf_source(self):
        g = generators.star_graph(5)
        result = single_source_replacement_paths(g, 3, params=AlgorithmParams(seed=7))
        assert result.matches({3: brute_force_single_source(g, 3)})

    def test_path_graph_all_bridges(self):
        g = generators.path_graph(8)
        answer = brute_force_single_source(g, 0)
        for target, per_edge in answer.items():
            assert set(per_edge.values()) == {math.inf}
        result = single_source_replacement_paths(g, 0, params=AlgorithmParams(seed=8))
        assert result.matches({0: answer})

    def test_barbell_bridge_separates_the_cliques(self):
        g = generators.barbell_graph(3, 4)
        result = multiple_source_replacement_paths(
            g, [0, 1], params=AlgorithmParams(seed=9)
        )
        assert result.matches(brute_force_multi_source(g, [0, 1]))
        # Replacements inside a clique are finite, across the bridge infinite.
        bridge_values = [
            value
            for _, _, _, value in result.iter_entries()
            if value == math.inf
        ]
        assert bridge_values, "the barbell bridge must be irreplaceable"


class TestFromAdjacencyContract:
    def test_round_trips_adjacency(self):
        for g in (
            generators.gnp_random_graph(15, 0.25, seed=10),
            generators.star_graph(4),
            generators.barbell_graph(3, 2),
            Graph(3),
            Graph(0),
        ):
            assert Graph.from_adjacency(g.adjacency()) == g

    def test_symmetric_input_accepted(self):
        g = Graph.from_adjacency([[1, 2], [0], [0]])
        assert g.edges() == ((0, 1), (0, 2))

    def test_asymmetric_input_rejected(self):
        with pytest.raises(GraphError, match="asymmetric"):
            Graph.from_adjacency([[1], [], []])
        with pytest.raises(GraphError, match="asymmetric"):
            Graph.from_adjacency([[], [0], []])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError, match="self loop"):
            Graph.from_adjacency([[0]])

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(GraphError, match="outside"):
            Graph.from_adjacency([[3], []])
        with pytest.raises(GraphError, match="outside"):
            Graph.from_adjacency([[-1], []])
