"""Tests for the brute-force oracles and the auxiliary-graph Dijkstra."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import InvalidParameterError
from repro.graph import generators
from repro.graph.bfs import bfs_distances, bfs_tree
from repro.graph.graph import Graph
from repro.rp.bruteforce import (
    brute_force_multi_source,
    brute_force_single_pair,
    brute_force_single_source,
    count_reported_pairs,
    replacement_distance,
)
from repro.rp.dijkstra import AuxiliaryGraphBuilder, dijkstra, reconstruct_path


class TestBruteForce:
    def test_single_pair_matches_per_edge_bfs(self):
        g = generators.cycle_graph(6)
        answer = brute_force_single_pair(g, 0, 3)
        for edge, value in answer.items():
            assert value == bfs_distances(g, 0, forbidden_edge=edge)[3]

    def test_single_source_covers_exactly_path_edges(self):
        g = generators.grid_graph(3, 3)
        tree = bfs_tree(g, 0)
        answer = brute_force_single_source(g, 0, source_tree=tree)
        for target, per_edge in answer.items():
            assert set(per_edge) == set(tree.path_edges_to(target))

    def test_single_source_excludes_source_and_unreachable(self):
        g = Graph(4, [(0, 1), (2, 3)])
        answer = brute_force_single_source(g, 0)
        assert 0 not in answer
        assert 2 not in answer and 3 not in answer

    def test_bridge_failures_are_infinite(self):
        g = generators.path_graph(4)
        answer = brute_force_single_source(g, 0)
        assert answer[3][(1, 2)] is math.inf

    def test_multi_source_shape(self):
        g = generators.cycle_graph(5)
        answer = brute_force_multi_source(g, [0, 2])
        assert set(answer) == {0, 2}

    def test_invalid_source_rejected(self):
        with pytest.raises(InvalidParameterError):
            brute_force_single_source(generators.path_graph(3), 9)

    def test_replacement_distance_wrapper(self):
        g = generators.cycle_graph(6)
        assert replacement_distance(g, 0, 3, (0, 1)) == 3
        assert replacement_distance(g, 0, 1, (0, 1)) == 5
        with pytest.raises(InvalidParameterError):
            replacement_distance(g, 0, 3, (0, 3))

    def test_count_reported_pairs(self):
        g = generators.path_graph(4)
        answer = brute_force_single_source(g, 0)
        # Targets 1, 2, 3 with 1, 2, 3 path edges respectively.
        assert count_reported_pairs(answer) == 6


class TestDijkstra:
    def test_simple_shortest_paths(self):
        adjacency = {"a": [("b", 1.0), ("c", 4.0)], "b": [("c", 1.0)], "c": []}
        dist, _ = dijkstra(adjacency, "a")
        assert dist == {"a": 0.0, "b": 1.0, "c": 2.0}

    def test_predecessors_reconstruct_path(self):
        adjacency = {0: [(1, 1.0)], 1: [(2, 1.0)], 2: []}
        dist, pred = dijkstra(adjacency, 0, with_predecessors=True)
        assert reconstruct_path(pred, 0, 2) == [0, 1, 2]
        assert reconstruct_path(pred, 0, 0) == [0]
        assert reconstruct_path(pred, 0, 99) == []

    def test_unreachable_nodes_absent(self):
        adjacency = {0: [(1, 1.0)], 2: [(3, 1.0)]}
        dist, _ = dijkstra(adjacency, 0)
        assert 3 not in dist

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            dijkstra({0: [(1, -1.0)]}, 0)

    def test_builder_counts(self):
        builder = AuxiliaryGraphBuilder()
        builder.add_node("x")
        builder.add_edge("x", "y", 2.0)
        builder.add_edge("y", "z", 1.0)
        assert builder.num_nodes == 3
        assert builder.num_edges == 2
        dist, _ = dijkstra(builder.adjacency(), "x")
        assert dist["z"] == 3.0
