"""End-to-end tests of the SSRP and MSRP pipelines against brute force."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import random_instance
from repro.core.landmarks import LandmarkHierarchy
from repro.core.msrp import MSRPSolver, multiple_source_replacement_paths
from repro.core.params import AlgorithmParams
from repro.core.ssrp import single_source_replacement_paths
from repro.exceptions import InternalInvariantError, InvalidParameterError
from repro.graph import generators
from repro.graph.graph import Graph
from repro.rp.bruteforce import brute_force_multi_source, brute_force_single_source


class TestSSRP:
    @pytest.mark.parametrize("trial", range(20))
    def test_matches_brute_force_on_random_graphs(self, trial):
        graph, sources = random_instance(trial)
        source = sources[0]
        result = single_source_replacement_paths(
            graph, source, params=AlgorithmParams(seed=trial)
        )
        assert result.matches({source: brute_force_single_source(graph, source)})

    def test_cycle(self):
        g = generators.cycle_graph(8)
        result = single_source_replacement_paths(g, 0, params=AlgorithmParams(seed=1))
        assert result.matches({0: brute_force_single_source(g, 0)})

    def test_bridges_report_infinity(self):
        g = generators.path_graph(6)
        result = single_source_replacement_paths(g, 0, params=AlgorithmParams(seed=1))
        assert result.replacement_length(0, 5, (2, 3)) is math.inf

    def test_disconnected_graph_reports_only_reachable_targets(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        result = single_source_replacement_paths(g, 0, params=AlgorithmParams(seed=1))
        assert set(result.targets(0)) == {1, 2}

    def test_medium_connected_graph(self):
        g = generators.random_connected_graph(70, extra_edges=140, seed=9)
        result = single_source_replacement_paths(g, 5, params=AlgorithmParams(seed=9))
        assert result.matches({5: brute_force_single_source(g, 5)})


class TestMSRPDirect:
    @pytest.mark.parametrize("trial", range(20))
    def test_matches_brute_force_on_random_graphs(self, trial):
        graph, sources = random_instance(trial + 100)
        result = multiple_source_replacement_paths(
            graph, sources, params=AlgorithmParams(seed=trial)
        )
        assert result.matches(brute_force_multi_source(graph, sources))

    @pytest.mark.parametrize(
        "graph_factory,sources",
        [
            (lambda: generators.grid_graph(4, 5), [0, 7, 13]),
            (lambda: generators.barbell_graph(4, 3), [0, 6]),
            (lambda: generators.path_with_clusters(16, 4, 3, seed=3), [0, 8]),
            (lambda: generators.complete_graph(8), [0, 1, 2]),
        ],
    )
    def test_structured_graphs(self, graph_factory, sources):
        graph = graph_factory()
        result = multiple_source_replacement_paths(
            graph, sources, params=AlgorithmParams(seed=5)
        )
        assert result.matches(brute_force_multi_source(graph, sources))

    def test_medium_graph_with_several_sources(self):
        g = generators.random_connected_graph(60, extra_edges=150, seed=17)
        sources = [3, 14, 41, 58]
        result = multiple_source_replacement_paths(g, sources, params=AlgorithmParams(seed=17))
        assert result.matches(brute_force_multi_source(g, sources))

    def test_all_vertices_as_sources_small(self):
        g = generators.cycle_graph(7)
        sources = list(range(7))
        result = multiple_source_replacement_paths(g, sources, params=AlgorithmParams(seed=2))
        assert result.matches(brute_force_multi_source(g, sources))

    def test_verify_flag_passes_on_valid_run(self):
        g = generators.grid_graph(3, 4)
        params = AlgorithmParams(seed=3, verify=True)
        multiple_source_replacement_paths(g, [0, 5], params=params)

    def test_injected_landmark_hierarchy_all_vertices_is_exact(self):
        # With every vertex a landmark the algorithm is deterministic.
        g = generators.random_connected_graph(25, extra_edges=30, seed=8)
        hierarchy = LandmarkHierarchy.from_levels(
            [list(range(25))] * 4, sources=[0, 12]
        )
        result = multiple_source_replacement_paths(
            g, [0, 12], params=AlgorithmParams(seed=8), landmark_hierarchy=hierarchy
        )
        assert result.matches(brute_force_multi_source(g, [0, 12]))


class TestMSRPAuxiliary:
    @pytest.mark.parametrize("trial", range(10))
    def test_matches_brute_force_on_random_graphs(self, trial):
        graph, sources = random_instance(trial + 300, max_n=18)
        result = multiple_source_replacement_paths(
            graph,
            sources,
            params=AlgorithmParams(seed=trial),
            landmark_strategy="auxiliary",
        )
        assert result.matches(brute_force_multi_source(graph, sources))

    def test_medium_connected_graph(self):
        g = generators.random_connected_graph(45, extra_edges=90, seed=23)
        sources = [1, 22, 40]
        result = multiple_source_replacement_paths(
            g, sources, params=AlgorithmParams(seed=23), landmark_strategy="auxiliary"
        )
        assert result.matches(brute_force_multi_source(g, sources))

    def test_agrees_with_direct_strategy(self):
        g = generators.path_with_clusters(14, 3, 2, seed=6)
        sources = [0, 7]
        params = AlgorithmParams(seed=6)
        direct = multiple_source_replacement_paths(g, sources, params=params)
        auxiliary = multiple_source_replacement_paths(
            g, sources, params=params, landmark_strategy="auxiliary"
        )
        assert direct.to_dict() == auxiliary.to_dict()


class TestValidation:
    def test_empty_source_set_rejected(self):
        with pytest.raises(InvalidParameterError):
            multiple_source_replacement_paths(generators.cycle_graph(4), [])

    def test_out_of_range_source_rejected(self):
        with pytest.raises(InvalidParameterError):
            multiple_source_replacement_paths(generators.cycle_graph(4), [9])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(InvalidParameterError):
            MSRPSolver(generators.cycle_graph(4), [0], landmark_strategy="magic")

    def test_duplicate_sources_are_deduplicated(self):
        g = generators.cycle_graph(5)
        solver = MSRPSolver(g, [2, 2, 2])
        assert solver.sources == [2]

    def test_phase_timings_recorded(self):
        g = generators.cycle_graph(10)
        solver = MSRPSolver(g, [0], params=AlgorithmParams(seed=1))
        solver.solve()
        assert {"bfs_trees", "landmark_replacement_paths", "assembly"} <= set(
            solver.phase_seconds
        )


@st.composite
def msrp_instance(draw):
    n = draw(st.integers(min_value=2, max_value=11))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=2 * n, unique=True)) if possible else []
    sigma = draw(st.integers(min_value=1, max_value=min(3, n)))
    sources = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=sigma,
            max_size=sigma,
            unique=True,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return Graph(n, edges), sources, seed


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(msrp_instance())
    def test_msrp_matches_brute_force(self, instance):
        graph, sources, seed = instance
        result = multiple_source_replacement_paths(
            graph, sources, params=AlgorithmParams(seed=seed)
        )
        assert result.matches(brute_force_multi_source(graph, sources))

    @settings(max_examples=30, deadline=None)
    @given(msrp_instance())
    def test_replacement_at_least_shortest_distance(self, instance):
        graph, sources, seed = instance
        result = multiple_source_replacement_paths(
            graph, sources, params=AlgorithmParams(seed=seed)
        )
        for s, t, _, value in result.iter_entries():
            assert value >= result.distance(s, t)
